"""The executor: Perpetual's deterministic application model.

The paper requires applications to be deterministic and single-threaded
but explicitly *active*: "long-running active threads of computation"
(section 3) that may interleave serving incoming requests with issuing
their own out-calls. We model this with generator coroutines: an
application is a generator function that yields *effects* and receives
their outcomes, e.g. ::

    def app():
        while True:
            event = yield ReceiveRequest()
            rid = yield Send("bank", {"op": "authorize", **event.payload})
            reply = yield ReceiveReply(rid)
            yield SendReply(event, {"ok": not reply.aborted})

Yields are the only suspension points, so replica execution is a pure
function of the agreed event sequence — exactly the determinism Perpetual
needs. The driver owns an :class:`ExecutorRuntime` and resumes it whenever
agreed events make a blocked effect satisfiable.

Blocking and non-blocking behaviour mirror the Perpetual-WS API (paper
Figure 3): ``Send`` never blocks; ``ReceiveReply`` blocks for a specific
or any reply; ``ReceiveRequest`` blocks for the next incoming request;
``SendReply`` never blocks. ``Compute`` consumes simulated CPU time, and
``CurrentTime`` / ``Timestamp`` / ``Random`` are the deterministic utility
functions of section 4.2 — each blocks until the voter group agrees on
the value.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator

from repro.common.errors import ExecutorViolation
from repro.common.ids import RequestId

AppFactory = Callable[[], Generator[Any, Any, None]]


# ---------------------------------------------------------------------------
# Effects yielded by applications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Send:
    """Issue an asynchronous request to ``target``; resumes immediately
    with the :class:`RequestId` handle for later reply correlation.

    ``timeout_ms`` arms the deterministic abort of section 4.2 (the
    default, ``None``, never aborts — the paper's default behaviour).
    """

    target: str
    payload: Any
    timeout_ms: int | None = None


@dataclass(frozen=True)
class ReceiveReply:
    """Block until a reply is available; resumes with a :class:`ReplyEvent`.

    With ``request=None`` this is the "next available reply" accessor;
    with a specific :class:`RequestId` it blocks for that request's reply.
    """

    request: RequestId | None = None


@dataclass(frozen=True)
class ReceiveRequest:
    """Block until the next agreed incoming request; resumes with a
    :class:`RequestEvent`."""


@dataclass(frozen=True)
class ReceiveAny:
    """Block until the next agreed event of either kind; resumes with a
    :class:`RequestEvent` or a :class:`ReplyEvent`.

    This is the raw view of Perpetual's local event queue (Figure 1,
    stages 3 and 9 both enqueue into it) and is what lets an active
    application interleave serving new requests with consuming replies to
    its earlier out-calls without ever polling.
    """


@dataclass(frozen=True)
class SendReply:
    """Send the reply to a previously received request; never blocks."""

    request: "RequestEvent"
    payload: Any


@dataclass(frozen=True)
class Compute:
    """Consume ``cpu_us`` of (simulated) CPU time; resumes with None.

    This is how benchmark applications model non-trivial request
    processing (the paper's message-digest busy work, section 6.2).
    """

    cpu_us: int


@dataclass(frozen=True)
class Sleep:
    """Block for a wall-clock interval without consuming CPU.

    Used by *unreplicated* load generators (the TPC-W remote browser
    emulators' think times). Unlike ``Compute``, the interval is idle
    time, so other work on the same host proceeds. Replicated services
    must not use it: local timers fire at different real times on
    different replicas relative to agreed events, which would break
    replica determinism — replicated services sequence everything through
    ``CurrentTime`` and the agreed event queue instead.
    """

    duration_us: int


@dataclass(frozen=True)
class CurrentTime:
    """Agreed replacement for ``System.currentTimeMillis()``; resumes with
    the replica-consistent time in milliseconds."""


@dataclass(frozen=True)
class Timestamp:
    """Agreed replacement for constructing ``java.util.Date``; resumes
    with the replica-consistent timestamp in milliseconds."""


@dataclass(frozen=True)
class Random:
    """Agreed replacement for constructing ``java.util.Random``; resumes
    with a :class:`random.Random` seeded by the agreed seed."""


# ---------------------------------------------------------------------------
# Events delivered to applications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequestEvent:
    """An agreed incoming request, as handed to the application."""

    request_id: RequestId
    caller: str
    payload: Any
    responder_index: int = 0


@dataclass(frozen=True)
class ReplyEvent:
    """The outcome of one of the application's own out-calls.

    ``aborted`` is True when the voter group deterministically aborted the
    request (timeout against an unresponsive or compromised target); the
    payload is then None.
    """

    request_id: RequestId
    payload: Any
    aborted: bool = False


# ---------------------------------------------------------------------------
# The runtime
# ---------------------------------------------------------------------------


@dataclass
class _Outbox:
    """Effects the runtime asks its driver to perform."""

    sends: list[tuple[RequestId, Send]] = field(default_factory=list)
    replies: list[SendReply] = field(default_factory=list)
    compute_us: int = 0
    utility: str | None = None  # "time" | "timestamp" | "random", at most one
    sleep_us: int | None = None  # armed when blocked on Sleep


class ExecutorRuntime:
    """Drives one application generator deterministically.

    The driver feeds agreed events in (``deliver_request``,
    ``deliver_reply``, ``deliver_utility``) and then calls :meth:`step` to
    resume the generator as far as it can go; :meth:`take_outbox` returns
    the externally visible effects accumulated during the resume, in
    deterministic order.
    """

    def __init__(
        self,
        app_factory: AppFactory,
        allocate_request_id: Callable[[], RequestId],
    ) -> None:
        self._app = app_factory()
        self._allocate = allocate_request_id
        self._started = False
        self._finished = False
        # What the generator is currently blocked on.
        self._waiting: Any = None
        # The local event queue: agreed events in agreement order (the
        # paper's stages 3 and 9 both enqueue here).
        self._events: list[RequestEvent | ReplyEvent] = []
        self._reply_by_id: dict[RequestId, ReplyEvent] = {}
        self._claimed: set[RequestId] = set()
        self._utility_value: tuple[str, int] | None = None
        self._utility_requested = False
        self._sleep_requested = False
        self._woke = False
        self._outbox = _Outbox()
        # Requests this executor has issued (for validation).
        self._issued: set[RequestId] = set()
        self.steps = 0

    # -- driver-facing input ------------------------------------------------

    def deliver_request(self, event: RequestEvent) -> None:
        self._events.append(event)

    def deliver_reply(self, event: ReplyEvent) -> None:
        if event.request_id in self._reply_by_id:
            return  # duplicate agreement delivery; keep the first
        self._reply_by_id[event.request_id] = event
        self._events.append(event)

    def deliver_utility(self, utility: str, value: int) -> None:
        self._utility_value = (utility, value)

    def deliver_wakeup(self) -> None:
        """The driver's sleep timer fired."""
        self._woke = True

    # -- driver-facing control ------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def blocked_on(self) -> Any:
        return self._waiting

    def step(self) -> None:
        """Resume the generator until it blocks on an unsatisfiable effect."""
        if self._finished:
            return
        if not self._started:
            self._started = True
            self._advance(None)
        while not self._finished:
            satisfied = self._try_satisfy()
            if satisfied is _UNSATISFIED:
                return
            self._advance(satisfied)

    def take_outbox(self) -> _Outbox:
        out, self._outbox = self._outbox, _Outbox()
        return out

    # -- internals ---------------------------------------------------------------

    def _advance(self, value: Any) -> None:
        """Send ``value`` into the generator; stash the next effect."""
        try:
            effect = self._app.send(value)
        except StopIteration:
            self._finished = True
            self._waiting = None
            return
        self.steps += 1
        self._waiting = self._handle_immediate(effect)

    def _handle_immediate(self, effect: Any) -> Any:
        """Process non-blocking effects inline; return the blocking one.

        Non-blocking effects (Send, SendReply, Compute) are recorded on
        the outbox and the generator is immediately resumable; we loop in
        :meth:`step` via a synthetic "satisfied" path by returning None
        from _try_satisfy — instead, for simplicity they are handled here
        and the generator resumed straight away.
        """
        while True:
            if isinstance(effect, Send):
                request_id = self._allocate()
                self._issued.add(request_id)
                self._outbox.sends.append((request_id, effect))
                resume_value = request_id
            elif isinstance(effect, SendReply):
                self._outbox.replies.append(effect)
                resume_value = None
            elif isinstance(effect, Compute):
                if effect.cpu_us < 0:
                    raise ExecutorViolation("negative Compute duration")
                self._outbox.compute_us += effect.cpu_us
                resume_value = None
            else:
                return effect  # a blocking effect
            try:
                effect = self._app.send(resume_value)
            except StopIteration:
                self._finished = True
                return None
            self.steps += 1

    def _try_satisfy(self) -> Any:
        """Check whether the blocking effect can complete now."""
        waiting = self._waiting
        if waiting is None:
            return _UNSATISFIED
        if isinstance(waiting, ReceiveRequest):
            for i, event in enumerate(self._events):
                if isinstance(event, RequestEvent):
                    return self._events.pop(i)
            return _UNSATISFIED
        if isinstance(waiting, ReceiveAny):
            if self._events:
                event = self._events.pop(0)
                if isinstance(event, ReplyEvent):
                    self._claimed.add(event.request_id)
                return event
            return _UNSATISFIED
        if isinstance(waiting, ReceiveReply):
            return self._match_reply(waiting)
        if isinstance(waiting, (CurrentTime, Timestamp, Random)):
            wanted = _utility_kind(waiting)
            if self._utility_value is not None:
                utility, value = self._utility_value
                if utility != wanted:
                    raise ExecutorViolation(
                        f"agreed utility {utility!r} arrived while blocked "
                        f"on {wanted!r}"
                    )
                self._utility_value = None
                self._utility_requested = False
                if isinstance(waiting, Random):
                    # analysis: allow(DET002) — seeded from the
                    # voter-agreed utility value, so every correct
                    # replica constructs an identical stream
                    return _random.Random(value)
                return value
            if not self._utility_requested:
                # First resume attempt: emit the utility request once.
                self._utility_requested = True
                self._outbox.utility = wanted
            return _UNSATISFIED
        if isinstance(waiting, Sleep):
            if self._woke:
                self._woke = False
                self._sleep_requested = False
                return None
            if not self._sleep_requested:
                self._sleep_requested = True
                self._outbox.sleep_us = waiting.duration_us
            return _UNSATISFIED
        raise ExecutorViolation(f"application yielded non-effect: {waiting!r}")

    def _match_reply(self, waiting: ReceiveReply) -> Any:
        if waiting.request is not None:
            if waiting.request not in self._issued:
                raise ExecutorViolation(
                    f"receiveReply for request {waiting.request} that this "
                    "executor never sent"
                )
            event = self._reply_by_id.get(waiting.request)
            if event is None or event.request_id in self._claimed:
                return _UNSATISFIED
            self._claimed.add(event.request_id)
            self._events = [
                e
                for e in self._events
                if not (
                    isinstance(e, ReplyEvent)
                    and e.request_id == event.request_id
                )
            ]
            return event
        for i, event in enumerate(self._events):
            if isinstance(event, ReplyEvent):
                self._events.pop(i)
                self._claimed.add(event.request_id)
                return event
        return _UNSATISFIED


class _Unsatisfied:
    """Sentinel: the blocking effect cannot complete yet."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unsatisfied>"


_UNSATISFIED = _Unsatisfied()


def _utility_kind(effect: Any) -> str:
    if isinstance(effect, CurrentTime):
        return "time"
    if isinstance(effect, Timestamp):
        return "timestamp"
    return "random"


def run_passive(
    handler: Callable[[RequestEvent], Any],
) -> AppFactory:
    """Adapt a passive request handler into an executor application.

    Passive deterministic web services (the only kind Thema/BFT-WS/SWS
    support) are a special case of the Perpetual-WS model: an endless
    receive/handle/reply loop. ``handler`` returns the reply payload.
    """

    def app() -> Iterator[Any]:
        while True:
            event = yield ReceiveRequest()
            result = handler(event)
            yield SendReply(event, result)

    return app
