"""The Perpetual voter node.

One voter runs per service replica, co-located with that replica's driver
(paper section 2.1, Figure 1). The voter:

- embeds a CLBFT replica and uses it to agree on every event the local
  driver's executor will consume: external requests (stage 2), results of
  the service's own out-calls (stage 8), agreed utility values, and
  deterministic abort decisions;
- collects stage-1 request copies from calling drivers and, when primary,
  starts agreement once ``fc + 1`` matching copies arrived — the embedded
  envelope proof lets every backup re-verify this before preparing;
- forwards the local executor's replies to the designated responder
  (stage 5) and, when acting as responder, bundles ``ft + 1`` matching
  replies for the calling drivers (stage 6);
- validates result/abort/utility agreement items against what its own
  co-located driver reported, deferring pre-prepares it cannot validate
  yet (PBFT external validity) rather than rejecting them.

Fault isolation falls out of the quorum checks here: fewer than ``fc + 1``
faulty calling replicas cannot inject a request, and a compromised target
cannot break the calling group's safety because the result consumed by the
application is whatever the calling group's own CLBFT instance agreed.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any

from repro.clbft.config import GroupConfig
from repro.clbft.messages import (
    ClientRequest,
    PrePrepare,
    decode_message,
    encode_message,
    message_from_wire,
    message_to_wire,
)
from repro.clbft.replica import VIEW_CHANGE_TIMER, ClbftReplica
from repro.common.encoding import IdentityMemo, wire_blob
from repro.common.ids import RequestId
from repro.common.metrics import METRICS
from repro.crypto.cost import CryptoCostModel, MAC_COST_MODEL
from repro.crypto.digest import digest_hex
from repro.crypto.keys import KeyStore
from repro.perpetual.messages import (
    ITEM_ABORT,
    ITEM_REQUEST,
    ITEM_RESULT,
    ITEM_UTILITY,
    AbortRequest,
    AgreedEvent,
    LocalResult,
    OutRequest,
    ReplyBundle,
    ReplyForward,
    ResultSubmission,
    UtilityRequest,
    abort_item,
    item_kind,
    reply_auth_bytes,
    request_item,
    result_item,
    utility_item,
)
from repro.sim.kernel import ProtocolNode, SimNodeEnv
from repro.transport.channel import CHANNEL_FLUSH_TAG, ChannelAdapter
from repro.transport.connection import SimConnection
from repro.transport.wire import (
    BatchEnvelope,
    WireEnvelope,
    auth_to_wire,
    envelope_from_wire,
    envelope_to_wire,
)

# Simulated epoch so agreed clock values resemble wall-clock milliseconds
# (the paper's experiments ran in late 2007).
EPOCH_MS = 1_190_000_000_000


@lru_cache(maxsize=4096)
def voter_name(service: str, index: int) -> str:
    return f"{service}/v{index}"


@lru_cache(maxsize=4096)
def driver_name(service: str, index: int) -> str:
    return f"{service}/d{index}"


@lru_cache(maxsize=4096)
def principal_index(name: str) -> int | None:
    """Replica index from a ``service/vN`` or ``service/dN`` name."""
    _, _, tail = name.rpartition("/")
    if len(tail) >= 2 and tail[0] in ("v", "d") and tail[1:].isdigit():
        return int(tail[1:])
    return None


# Derived-digest memos: voters sharing one decoded message (multicast
# receivers, local echo + remote echoes of the same submission) compute
# its match key once. Keyed on object identity; safe because protocol
# messages are immutable once constructed.
_REQUEST_KEYS = IdentityMemo()
_SUBMISSION_KEYS = IdentityMemo()
_ITEM_RESULT_KEYS = IdentityMemo()


def request_match_key(req: OutRequest) -> str:
    """Digest identifying 'matching' stage-1 copies.

    Retries rotate ``responder_index`` and bump ``attempt``; copies still
    match if the logical request — id, caller, target, payload — agrees.
    Keys are digests of the fused wire encoding; every voter derives them
    with this same function, so only internal consistency matters.
    """
    # Key over a *subset* of the message (attempt/responder excluded),
    # so no wire blob matches; memoized per message object above.
    return _REQUEST_KEYS.get(
        req,
        lambda r: digest_hex(
            encode_message(  # analysis: allow(WIRE001, WIRE002) — see note
                ("out-request", r.request_id, r.caller, r.target, r.payload)
            )
        ),
    )


def result_match_key(request_id: RequestId, result: Any, aborted: bool) -> str:
    # Key over the agreed (id, result, aborted) triple, which never
    # crosses the wire in this exact shape; callers memoize
    # (submission_match_key, reply-store dedup).
    # analysis: allow(WIRE001, WIRE002)
    return digest_hex(encode_message(("result", request_id, result, aborted)))


def submission_match_key(msg: ResultSubmission) -> str:
    """Match key of a stage-7 submission, computed once per message."""
    return _SUBMISSION_KEYS.get(
        msg, lambda m: result_match_key(m.request_id, m.result, m.aborted)
    )


def item_result_key(item: ClientRequest) -> str:
    """Match key of a result/abort agreement item, once per shared item."""
    return _ITEM_RESULT_KEYS.get(
        item,
        lambda it: result_match_key(
            it.op.get("request_id"),
            it.op.get("value"),
            item_kind(it) == ITEM_ABORT,
        ),
    )


class VoterNode(ProtocolNode):
    """One Perpetual voter, bound to the simulation kernel."""

    def __init__(
        self,
        topology,
        service: str,
        index: int,
        keys: KeyStore,
        cost_model: CryptoCostModel = MAC_COST_MODEL,
        clbft_overrides: dict | None = None,
        fault: Any | None = None,
        batching: str | int = "off",
    ) -> None:
        self.topology = topology
        self.service = service
        self.index = index
        self.name = voter_name(service, index)
        self._keys = keys
        self._cost_model = cost_model
        self._batching = batching
        # Tick mode: the hosting substrate flushes after every handler.
        self.wants_flush = batching == "tick"
        spec = topology.spec(service)
        overrides = clbft_overrides or {}
        self.config = GroupConfig(n=spec.n, **overrides)
        self._env: SimNodeEnv | None = None
        self._channel: ChannelAdapter | None = None
        self.replica: ClbftReplica | None = None
        # Memoized peer-name lists (topology is fixed for a deployment).
        self._siblings_cache: list[str] | None = None
        self._caller_drivers_cache: dict[str, list[str]] = {}

        # Stage-2 collection: match-key -> {calling driver name: (envelope, req)}.
        self._request_copies: dict[str, dict[str, tuple[WireEnvelope, OutRequest]]] = {}
        # Executed external requests: request-id -> agreed OutRequest meta.
        self._incoming_meta: dict[RequestId, OutRequest] = {}
        # Local executor replies, kept for re-forwarding on retries: the
        # forward plus its encode-once blob, so a retry re-sends cached
        # bytes instead of re-running the encoder.
        self._reply_store: dict[RequestId, tuple[ReplyForward, Any]] = {}
        # Responder duty: request-id -> {voter index: ReplyForward}.
        self._responder_collect: dict[RequestId, dict[int, ReplyForward]] = {}
        self._responder_sent: set[RequestId] = set()
        # Stage-7 echoes from drivers: request-id -> {driver idx: match key}.
        self._result_echoes: dict[RequestId, dict[int, str]] = {}
        self._own_echo: dict[RequestId, tuple[str, ResultSubmission]] = {}
        # Utility requests from the co-located driver.
        self._own_utility: dict[int, str] = {}
        self._util_submitted: set[int] = set()
        # Out-call results already delivered to (or aborted for) the driver.
        self._delivered_results: set[RequestId] = set()
        # Pre-prepares awaiting external validity (deferred, then retried).
        self._deferred: list[tuple[int, PrePrepare]] = []
        # Checkpoint-driven GC index: request-id -> the agreement seqno
        # its cached state was last touched at. Entries at or below the
        # stable checkpoint are evicted (the Perpetual technical report's
        # reply-cache GC; replaces the old 4096-entry FIFO stand-in).
        self._gc_seqnos: dict[RequestId, int] = {}
        # Scripted fault injector (None on correct replicas = zero cost).
        self._fault = fault

        # Observability.
        self.delivered_requests = 0
        self.delivered_replies = 0
        self.delivered_aborts = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, env: SimNodeEnv) -> None:
        if self._fault is not None:
            # The wrapper interposes on send/local_deliver, so the
            # channel below and every direct env.send here flow through
            # the fault script.
            env = self._fault.wrap_env(env)
        self._env = env
        window = self._batching if isinstance(self._batching, int) else None
        self._channel = ChannelAdapter(
            me=self.name,
            keys=self._keys,
            connection=SimConnection(env),
            charge=env.charge,
            cost_model=self._cost_model,
            encode=encode_message,
            decode=decode_message,
            batching=self._batching,
            # Window mode: arm the flush timer when the first message
            # buffers; tick mode flushes via on_flush instead.
            on_first_pending=(
                None if window is None
                else lambda: env.set_timer(CHANNEL_FLUSH_TAG, window)
            ),
        )
        self.replica = ClbftReplica(
            config=self.config,
            index=self.index,
            execute=self._execute_item,
            multicast=self._clbft_multicast,
            send_to=self._clbft_send_to,
            set_timer=env.set_timer,
            cancel_timer=env.cancel_timer,
            on_new_view=self._on_clbft_new_view,
            on_stable_checkpoint=self._on_stable_checkpoint,
        )

    @property
    def driver(self) -> str:
        return driver_name(self.service, self.index)

    def _sibling_voters(self) -> list[str]:
        siblings = self._siblings_cache
        if siblings is None:
            spec = self.topology.spec(self.service)
            siblings = self._siblings_cache = [
                voter_name(self.service, i)
                for i in range(spec.n)
                if i != self.index
            ]
        return siblings

    def _clbft_multicast(self, msg: Any) -> None:
        if self._fault is not None:
            plan = self._fault.clbft_multicast_plan(
                msg, self._sibling_voters(), self.replica
            )
            if plan is not None:
                for recipients, variant in plan:
                    if recipients:
                        self._channel.multicast(list(recipients), variant)
                return
        self._channel.multicast(self._sibling_voters(), msg)

    def _clbft_send_to(self, index: int, msg: Any) -> None:
        if index == self.index:
            self.replica.on_message(index, msg)
        else:
            self._channel.send(voter_name(self.service, index), msg)

    # ------------------------------------------------------------------
    # Kernel entry points
    # ------------------------------------------------------------------

    def on_message(self, src: Any, msg: Any) -> None:
        if self._fault is not None and not self._fault.deliver_ok(src):
            return
        if isinstance(msg, WireEnvelope):
            self._on_network(msg)
        elif isinstance(msg, BatchEnvelope):
            # One MAC verification for the whole batch, then the inner
            # envelopes dispatch exactly as if they arrived unbatched.
            for inner in self._channel.open_batch(msg):
                self._on_network(inner)
        else:
            self._on_local(msg)

    def on_timer(self, tag: Any) -> None:
        if self._fault is not None and self._fault.on_timer(tag):
            return
        if tag == CHANNEL_FLUSH_TAG:
            self._channel.flush()
            return
        self.replica.on_timer(tag)

    def on_flush(self) -> None:
        self._channel.flush()

    # -- network messages ---------------------------------------------------

    def _on_network(self, envelope: WireEnvelope) -> None:
        # The channel's fused codec decodes straight to protocol messages.
        msg = self._channel.accept(envelope)
        if msg is None:
            return
        sender = self._channel.sender_of(envelope)
        if isinstance(msg, OutRequest):
            self._on_out_request(sender, envelope, msg)
        elif isinstance(msg, ReplyForward):
            self._on_reply_forward(sender, msg)
        elif isinstance(msg, ResultSubmission):
            index = principal_index(sender)
            if index is not None and sender == driver_name(self.service, index):
                self._on_result_submission(index, msg, own=index == self.index)
        elif isinstance(msg, PrePrepare):
            self._on_clbft_pre_prepare(sender, msg)
        else:
            index = principal_index(sender)
            if index is not None and sender == voter_name(self.service, index):
                self.replica.on_message(index, msg)

    # -- local (co-located driver) messages ------------------------------------

    def _on_local(self, msg: Any) -> None:
        if isinstance(msg, LocalResult):
            self._on_local_result(msg)
        elif isinstance(msg, ResultSubmission):
            self._on_result_submission(self.index, msg, own=True)
        elif isinstance(msg, UtilityRequest):
            self._on_utility_request(msg)
        elif isinstance(msg, AbortRequest):
            self._on_abort_request(msg)

    # ------------------------------------------------------------------
    # Stage 1-2: external requests arrive
    # ------------------------------------------------------------------

    def _on_out_request(
        self, sender: str, envelope: WireEnvelope, req: OutRequest
    ) -> None:
        if str(req.target) != self.service:
            return
        caller_spec = self.topology.spec_or_none(str(req.caller))
        if caller_spec is None:
            return
        caller_index = principal_index(sender)
        if caller_index is None or sender != driver_name(
            str(req.caller), caller_index
        ):
            return  # stage-1 requests come only from calling drivers
        if req.request_id in self._reply_store:
            # Already executed: a retry routes the stored reply to the
            # retry's responder (the fault-handling path for a faulty
            # responder).
            stored_forward, stored_blob = self._reply_store[req.request_id]
            self._forward_reply(stored_forward, stored_blob, req)
            return
        if req.request_id in self._incoming_meta:
            # Agreed and delivered to the executor, reply still being
            # computed (slow execution, e.g. a nested out-call riding
            # through a view change downstream). Re-proposing would
            # double-execute; the reply is forwarded when it lands.
            return
        key = request_match_key(req)
        copies = self._request_copies.setdefault(key, {})
        copies[sender] = (envelope, req)
        if self.replica.is_primary:
            self._maybe_submit_external(key)
        else:
            # Relay the authenticated envelope to the current primary; its
            # authenticator covers every target voter, so it stays
            # verifiable end-to-end. Receiving a stage-1 copy is also
            # evidence a request awaits ordering: arm the view-change
            # timer so a dead or mute primary cannot stall the group
            # (PBFT's client-request liveness rule).
            primary = self.config.primary_of(self.replica.view)
            if primary != self.index:
                self._env.send(
                    voter_name(self.service, primary),
                    envelope,
                    size_bytes=envelope.size_bytes,
                )
            if not self._env.timer_armed(VIEW_CHANGE_TIMER):
                self._env.set_timer(
                    VIEW_CHANGE_TIMER, self.config.view_change_timeout_us
                )

    def _maybe_submit_external(self, key: str) -> None:
        """Primary duty: start agreement once fc+1 matching copies exist."""
        copies = self._request_copies.get(key)
        if not copies:
            return
        sample = next(iter(copies.values()))[1]
        caller_spec = self.topology.spec_or_none(str(sample.caller))
        if caller_spec is None:
            return
        needed = caller_spec.f + 1
        if len(copies) < needed:
            return
        proof = [
            envelope_to_wire(env_)
            for env_, _ in list(copies.values())[:needed]
        ]
        wire_req = message_to_wire(sample)
        self.replica.submit(request_item(wire_req, proof))

    def _on_clbft_new_view(self, new_view: int) -> None:
        """Entering a view: if now primary, propose every request whose
        fc+1 copies this voter already collected while a previous primary
        was failing."""
        if self.replica.is_primary:
            for key in list(self._request_copies):
                self._maybe_submit_external(key)

    def _validate_request_item(self, item: ClientRequest) -> bool:
        """Hard validity of a stage-2 agreement item (proof of fc+1 copies)."""
        op = item.op
        try:
            agreed_req = message_from_wire(op["request"])
            proof = [envelope_from_wire(p) for p in op["proof"]]
        except Exception:
            return False
        if not isinstance(agreed_req, OutRequest):
            return False
        if str(agreed_req.target) != self.service:
            return False
        caller_spec = self.topology.spec_or_none(str(agreed_req.caller))
        if caller_spec is None or len(proof) < caller_spec.f + 1:
            return False
        expected_key = request_match_key(agreed_req)
        verifier = self._channel.auth_factory
        senders = set()
        for envelope in proof:
            if not verifier.verify(envelope.payload, envelope.auth):
                return False
            # analysis: allow(WIRE001) — embedded-proof verification:
            # these envelopes arrive *inside* an agreement payload, not
            # through a channel, so there is no accept() memo to share
            copy = decode_message(envelope.payload)
            if not isinstance(copy, OutRequest):
                return False
            if request_match_key(copy) != expected_key:
                return False
            sender = envelope.auth.sender
            index = principal_index(sender)
            if index is None or sender != driver_name(str(copy.caller), index):
                return False
            senders.add(sender)
        return len(senders) >= caller_spec.f + 1

    # ------------------------------------------------------------------
    # Stage 4-6: local results, reply forwarding, responder duty
    # ------------------------------------------------------------------

    def _on_local_result(self, msg: LocalResult) -> None:
        meta = self._incoming_meta.get(msg.request_id)
        if meta is None:
            return  # result for a request we never delivered (driver bug)
        caller_drivers = self._caller_drivers(str(meta.caller))
        auth = self._sign_for(
            caller_drivers, reply_auth_bytes(msg.request_id, msg.result)
        )
        forward = ReplyForward(
            request_id=msg.request_id,
            result=msg.result,
            voter_index=self.index,
            auth=auth,
        )
        blob = wire_blob(forward, encode_message)
        self._reply_store[msg.request_id] = (forward, blob)
        self._forward_reply(forward, blob, meta)

    def _sign_for(self, receivers: list[str], data: bytes) -> list:
        """MAC authenticator over ``data`` for the calling drivers."""
        self._env.charge(self._cost_model.authenticator_cost_us(len(receivers)))
        factory = self._channel.auth_factory
        return auth_to_wire(factory.sign(data, list(receivers)))

    def _forward_reply(
        self, forward: ReplyForward, blob: Any, meta: OutRequest
    ) -> None:
        spec = self.topology.spec(self.service)
        responder_index = meta.responder_index % spec.n
        if responder_index == self.index:
            self._collect_reply(forward, meta)
        else:
            # Forward the cached blob: retries and rotated responders
            # reuse the bytes encoded when the result was first stored.
            self._channel.send(voter_name(self.service, responder_index), blob)

    def _on_reply_forward(self, sender: str, msg: ReplyForward) -> None:
        index = principal_index(sender)
        if index is None or sender != voter_name(self.service, index):
            return
        if index != msg.voter_index:
            return
        meta = self._incoming_meta.get(msg.request_id)
        if meta is None:
            return
        self._collect_reply(msg, meta)

    def _collect_reply(self, forward: ReplyForward, meta: OutRequest) -> None:
        """Responder duty: bundle ft+1 matching replies (stage 6)."""
        request_id = forward.request_id
        if request_id in self._responder_sent:
            return
        collected = self._responder_collect.setdefault(request_id, {})
        collected[forward.voter_index] = forward
        spec = self.topology.spec(self.service)
        by_value: dict[str, list[ReplyForward]] = {}
        for fwd in collected.values():
            key = result_match_key(request_id, fwd.result, False)
            by_value.setdefault(key, []).append(fwd)
        for matching in by_value.values():
            if len(matching) >= spec.f + 1:
                bundle = ReplyBundle(
                    request_id=request_id,
                    result=matching[0].result,
                    vouchers=tuple(
                        (fwd.voter_index, fwd.auth) for fwd in matching
                    ),
                )
                # Stage 6 fast path: encode the bundle once and multicast
                # it with one authenticator covering every calling driver
                # (the seed re-encoded and re-signed per driver).
                self._channel.multicast(
                    self._caller_drivers(str(meta.caller)), bundle
                )
                self._responder_sent.add(request_id)
                self._responder_collect.pop(request_id, None)
                return

    def _caller_drivers(self, caller: str) -> list[str]:
        drivers = self._caller_drivers_cache.get(caller)
        if drivers is None:
            spec = self.topology.spec(caller)
            drivers = [driver_name(caller, i) for i in range(spec.n)]
            self._caller_drivers_cache[caller] = drivers
        return drivers

    # ------------------------------------------------------------------
    # Stage 7-8: result submissions from calling drivers
    # ------------------------------------------------------------------

    def _on_result_submission(
        self, driver_index: int, msg: ResultSubmission, own: bool = False
    ) -> None:
        if msg.request_id in self._delivered_results:
            return
        key = submission_match_key(msg)
        echoes = self._result_echoes.setdefault(msg.request_id, {})
        echoes[driver_index] = key
        if own:
            self._own_echo[msg.request_id] = (key, msg)
        self._maybe_submit_result(msg.request_id, key, msg)
        self._retry_deferred()

    def _maybe_submit_result(
        self, request_id: RequestId, key: str, msg: ResultSubmission
    ) -> None:
        if not self._result_validated(request_id, key):
            return
        if msg.aborted:
            self.replica.submit(abort_item(request_id))
        else:
            self.replica.submit(result_item(request_id, msg.result))

    def _result_validated(self, request_id: RequestId, key: str) -> bool:
        """Own-driver echo, or fc+1 distinct driver echoes, match ``key``."""
        own = self._own_echo.get(request_id)
        if own is not None and own[0] == key:
            return True
        spec = self.topology.spec(self.service)
        echoes = self._result_echoes.get(request_id, {})
        matching = [i for i, k in echoes.items() if k == key]
        return len(matching) >= spec.f + 1

    # ------------------------------------------------------------------
    # Utilities and aborts (local driver requests)
    # ------------------------------------------------------------------

    def _on_utility_request(self, msg: UtilityRequest) -> None:
        self._own_utility[msg.util_seq] = msg.utility
        if msg.util_seq in self._util_submitted:
            return
        self._util_submitted.add(msg.util_seq)
        value = None
        if self.replica.is_primary:
            value = self._propose_utility_value(msg.utility, msg.util_seq)
        self.replica.submit(utility_item(msg.util_seq, msg.utility, value))
        self._retry_deferred()

    def _propose_utility_value(self, utility: str, util_seq: int) -> int:
        """The primary's proposed value (paper section 4.2)."""
        if utility in ("time", "timestamp"):
            return EPOCH_MS + self._env.now_ms()
        seed_material = f"{self.service}:{util_seq}:{self._env.now_us()}"
        return int.from_bytes(
            hashlib.sha256(seed_material.encode()).digest()[:8], "big"
        )

    def _on_abort_request(self, msg: AbortRequest) -> None:
        self._on_result_submission(
            self.index,
            ResultSubmission(request_id=msg.request_id, result=None, aborted=True),
            own=True,
        )

    # ------------------------------------------------------------------
    # External validity: intercepting pre-prepares
    # ------------------------------------------------------------------

    def _on_clbft_pre_prepare(self, sender: str, msg: PrePrepare) -> None:
        index = principal_index(sender)
        if index is None or sender != voter_name(self.service, index):
            return
        verdict = self._validate_batch(msg.requests)
        if verdict == "reject":
            return
        if verdict == "defer":
            self._deferred.append((index, msg))
            return
        self.replica.on_message(index, msg)

    def _validate_batch(self, requests: tuple) -> str:
        """Validate every item in a batch: accept, reject, or defer."""
        for item in requests:
            kind = item_kind(item)
            if kind == ITEM_REQUEST:
                if not self._validate_request_item(item):
                    return "reject"
            elif kind in (ITEM_RESULT, ITEM_ABORT):
                request_id = item.op.get("request_id")
                if request_id in self._delivered_results:
                    continue  # stale re-proposal; executing it is a no-op
                key = item_result_key(item)
                if not self._result_validated(request_id, key):
                    return "defer"
            elif kind == ITEM_UTILITY:
                if "value" not in item.op:
                    return "reject"
                wanted = self._own_utility.get(item.timestamp)
                if wanted is None:
                    return "defer"
                if wanted != item.op.get("utility"):
                    return "reject"
        return "accept"

    def _retry_deferred(self) -> None:
        if not self._deferred:
            return
        pending, self._deferred = self._deferred, []
        for index, msg in pending:
            verdict = self._validate_batch(msg.requests)
            if verdict == "accept":
                self.replica.on_message(index, msg)
            elif verdict == "defer":
                self._deferred.append((index, msg))

    # ------------------------------------------------------------------
    # Stage 3 and 9: agreed items reach the local driver
    # ------------------------------------------------------------------

    def _execute_item(self, seqno: int, item: ClientRequest) -> Any:
        kind = item_kind(item)
        if kind == ITEM_REQUEST:
            return self._deliver_request(seqno, item)
        if kind == ITEM_RESULT:
            return self._deliver_result(seqno, item)
        if kind == ITEM_ABORT:
            return self._deliver_abort(seqno, item)
        if kind == ITEM_UTILITY:
            return self._deliver_utility(item)
        return None

    def _deliver_request(self, seqno: int, item: ClientRequest) -> Any:
        req = message_from_wire(item.op["request"])
        self._incoming_meta[req.request_id] = req
        self._gc_seqnos[req.request_id] = seqno
        self._request_copies.pop(request_match_key(req), None)
        self.delivered_requests += 1
        self._env.local_deliver(
            self.driver,
            AgreedEvent(
                kind="request",
                body={
                    "request_id": req.request_id,
                    "caller": str(req.caller),
                    "payload": req.payload,
                    "responder_index": req.responder_index,
                },
            ),
        )
        return {"delivered": str(req.request_id)}

    def _deliver_result(self, seqno: int, item: ClientRequest) -> Any:
        request_id = item.op["request_id"]
        if request_id in self._delivered_results:
            return {"duplicate": True}
        self._delivered_results.add(request_id)
        self._gc_seqnos[request_id] = seqno
        self._cleanup_result_state(request_id)
        self.delivered_replies += 1
        self._env.local_deliver(
            self.driver,
            AgreedEvent(
                kind="reply",
                body={
                    "request_id": request_id,
                    "value": item.op["value"],
                    "aborted": False,
                },
            ),
        )
        return {"delivered": str(request_id)}

    def _deliver_abort(self, seqno: int, item: ClientRequest) -> Any:
        request_id = item.op["request_id"]
        if request_id in self._delivered_results:
            return {"duplicate": True}
        self._delivered_results.add(request_id)
        self._gc_seqnos[request_id] = seqno
        self._cleanup_result_state(request_id)
        self.delivered_aborts += 1
        self._env.local_deliver(
            self.driver,
            AgreedEvent(
                kind="reply",
                body={"request_id": request_id, "value": None, "aborted": True},
            ),
        )
        return {"aborted": str(request_id)}

    def _deliver_utility(self, item: ClientRequest) -> Any:
        self._env.local_deliver(
            self.driver,
            AgreedEvent(
                kind="utility",
                body={
                    "util_seq": item.timestamp,
                    "utility": item.op["utility"],
                    "value": item.op["value"],
                },
            ),
        )
        return {"utility": item.timestamp}

    def _cleanup_result_state(self, request_id: RequestId) -> None:
        self._result_echoes.pop(request_id, None)
        self._own_echo.pop(request_id, None)

    # ------------------------------------------------------------------
    # Checkpoint-driven garbage collection
    # ------------------------------------------------------------------

    @property
    def reply_cache_size(self) -> int:
        """Live entries in the reply store (bounded by checkpoint GC)."""
        return len(self._reply_store)

    def _on_stable_checkpoint(self, stable_seqno: int) -> None:
        """Evict per-request caches whose state was settled at or below
        the stable checkpoint (the technical report's reply-cache GC).

        A retransmission arriving after its reply was collected is
        re-executed from scratch; correct callers stop retransmitting
        once the reply bundle is delivered, and the fc+1-copy rule keeps
        faulty callers from forging late requests, so the window is
        bounded by the checkpoint interval.
        """
        if not self._gc_seqnos:
            return
        n = self.topology.spec(self.service).n
        dead = []
        for rid, seqno in self._gc_seqnos.items():
            if seqno > stable_seqno:
                continue
            meta = self._incoming_meta.get(rid)
            if meta is not None:
                # A delivered request whose local result has not landed
                # yet is still at-most-once-guarded by
                # ``_incoming_meta``; re-proposal would double-execute.
                if rid not in self._reply_store:
                    continue
                # Responder duty not discharged: at deep async windows
                # the stable checkpoint overtakes reply traffic still in
                # flight, and evicting the meta/collection state here
                # would strand the bundle and stall the caller into a
                # retransmission. The entry falls at the checkpoint
                # after the bundle ships.
                if (rid in self._responder_collect
                        or (meta.responder_index % n == self.index
                            and rid not in self._responder_sent)):
                    continue
            dead.append(rid)
        if not dead:
            return
        for rid in dead:
            del self._gc_seqnos[rid]
            self._incoming_meta.pop(rid, None)
            self._reply_store.pop(rid, None)
            self._responder_collect.pop(rid, None)
            self._responder_sent.discard(rid)
            self._delivered_results.discard(rid)
            self._cleanup_result_state(rid)
        METRICS.cache_evictions += len(dead)
