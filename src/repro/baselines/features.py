"""Figure 2: unique properties of Perpetual-WS vs Thema, BFT-WS, and SWS.

The matrix is transcribed from paper section 3. Each property of
Perpetual-WS that this reproduction implements has an executable probe in
``tests/integration`` (see the ``probe`` field for the pointer), so the
claimed column is backed by running code, not just a table.
"""

from __future__ import annotations

from dataclasses import dataclass

PERPETUAL_WS = "Perpetual-WS"
THEMA = "Thema"
BFT_WS = "BFT-WS"
SWS = "SWS"

SYSTEMS = (PERPETUAL_WS, THEMA, BFT_WS, SWS)

REPLICATED_INTEROP = "Replicated-WS interoperability"
FAULT_ISOLATION = "Fault isolation"
LONG_RUNNING = "Long-running active threads"
ASYNC_COMM = "Asynchronous communication"
HOST_INFO = "Access to host-specific information"
LOW_CRYPTO = "Low cryptographic overhead"
TRANSPORT_INDEP = "Transport independence"
UNMODIFIED_PASSIVE = "Support for unmodified passive WS"
DYNAMIC_DISCOVERY = "Dynamic WS discovery"

PROPERTIES = (
    REPLICATED_INTEROP,
    FAULT_ISOLATION,
    LONG_RUNNING,
    ASYNC_COMM,
    HOST_INFO,
    LOW_CRYPTO,
    TRANSPORT_INDEP,
    UNMODIFIED_PASSIVE,
    DYNAMIC_DISCOVERY,
)


@dataclass(frozen=True)
class FeatureClaim:
    """One cell of Figure 2, with the probe that demonstrates it."""

    system: str
    prop: str
    supported: bool
    probe: str = ""


def _matrix() -> dict[tuple[str, str], FeatureClaim]:
    # (property, Perpetual-WS, Thema, BFT-WS, SWS) per paper section 3.
    rows = [
        (REPLICATED_INTEROP, True, False, False, True),
        (FAULT_ISOLATION, True, False, False, False),
        (LONG_RUNNING, True, False, False, False),
        (ASYNC_COMM, True, False, False, False),
        (HOST_INFO, True, False, False, False),
        (LOW_CRYPTO, True, True, False, False),
        (TRANSPORT_INDEP, True, False, True, False),
        (UNMODIFIED_PASSIVE, True, True, True, True),
        (DYNAMIC_DISCOVERY, False, False, False, True),
    ]
    probes = {
        REPLICATED_INTEROP: "tests/integration/test_two_tier.py",
        FAULT_ISOLATION: "tests/integration/test_fault_isolation.py",
        LONG_RUNNING: "tests/integration/test_orchestrator.py",
        ASYNC_COMM: "tests/integration/test_async_messaging.py",
        HOST_INFO: "tests/integration/test_deterministic_utils.py",
        LOW_CRYPTO: "benchmarks/test_ablation_signatures.py",
        TRANSPORT_INDEP: "tests/unit/transport/test_connection.py",
        UNMODIFIED_PASSIVE: "tests/integration/test_passive_services.py",
        DYNAMIC_DISCOVERY: "",
    }
    matrix: dict[tuple[str, str], FeatureClaim] = {}
    for prop, perp, thema, bft_ws, sws in rows:
        for system, supported in zip(SYSTEMS, (perp, thema, bft_ws, sws)):
            probe = probes[prop] if system == PERPETUAL_WS and supported else ""
            matrix[(system, prop)] = FeatureClaim(
                system=system, prop=prop, supported=supported, probe=probe
            )
    return matrix


FEATURE_MATRIX = _matrix()


def supports(system: str, prop: str) -> bool:
    """Whether ``system`` supports ``prop`` per the paper's Figure 2."""
    return FEATURE_MATRIX[(system, prop)].supported


def render_matrix() -> str:
    """Figure 2 as a printable table."""
    width = max(len(p) for p in PROPERTIES) + 2
    header = " " * width + "  ".join(f"{s:>12s}" for s in SYSTEMS)
    lines = [header]
    for prop in PROPERTIES:
        cells = "  ".join(
            f"{'yes' if supports(s, prop) else '-':>12s}" for s in SYSTEMS
        )
        lines.append(f"{prop:<{width}s}{cells}")
    return "\n".join(lines)
