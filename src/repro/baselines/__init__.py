"""Comparison systems: the Figure 2 feature matrix and baselines.

The paper's quantitative baseline is its own system at n=1 (no
replication); its qualitative comparison (Figure 2) scores Perpetual-WS
against Thema, BFT-WS, and SWS on nine properties. This package encodes
that matrix (:mod:`repro.baselines.features`) with *executable* probes for
the properties our implementation can demonstrate, plus restricted-mode
deployment wrappers (:mod:`repro.baselines.restricted`) that emulate the
other systems' limitations (no replicated callers, synchronous-only,
signature authentication) for the ablation benchmarks.

See ``docs/benchmarks.md`` for how baseline comparisons feed the
regression gate's trajectory points.
"""

from repro.baselines.features import (
    FEATURE_MATRIX,
    PROPERTIES,
    SYSTEMS,
    supports,
)

__all__ = ["FEATURE_MATRIX", "PROPERTIES", "SYSTEMS", "supports"]
