"""Restricted deployment modes emulating the comparison systems.

These wrappers configure our own substrate the way the related systems
constrain theirs, so ablation benchmarks can quantify what each
restriction costs:

- :func:`bft_ws_mode`  — BFT-WS: digital-signature authentication and no
  replicated callers (callers must be n=1);
- :func:`thema_mode`   — Thema: MAC authentication, replicated services
  can call out, but calling services may not be replicated and all
  messaging is synchronous;
- :func:`sws_mode`     — SWS: replicated-to-replicated allowed, but
  signature authentication and synchronous-only messaging.

The *behavioural* differences (missing fault isolation, no long-running
threads) are qualitative and live in the Figure 2 matrix; what is
measurable here is the cryptographic and communication-pattern cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.crypto.cost import (
    CryptoCostModel,
    MAC_COST_MODEL,
    SIGNATURE_COST_MODEL,
)


@dataclass(frozen=True)
class RestrictedMode:
    """Constraints a comparison system imposes on a deployment."""

    name: str
    cost_model: CryptoCostModel
    replicated_callers: bool
    asynchronous: bool

    def check_caller_replication(self, n_calling: int) -> None:
        if n_calling > 1 and not self.replicated_callers:
            raise ConfigurationError(
                f"{self.name} does not support replicated calling services "
                f"(requested n={n_calling})"
            )

    def check_window(self, window: int) -> None:
        if window > 1 and not self.asynchronous:
            raise ConfigurationError(
                f"{self.name} only supports synchronous message exchange "
                f"(requested window={window})"
            )


def perpetual_ws_mode() -> RestrictedMode:
    return RestrictedMode(
        name="Perpetual-WS",
        cost_model=MAC_COST_MODEL,
        replicated_callers=True,
        asynchronous=True,
    )


def thema_mode() -> RestrictedMode:
    return RestrictedMode(
        name="Thema",
        cost_model=MAC_COST_MODEL,
        replicated_callers=False,
        asynchronous=False,
    )


def bft_ws_mode() -> RestrictedMode:
    return RestrictedMode(
        name="BFT-WS",
        cost_model=SIGNATURE_COST_MODEL,
        replicated_callers=False,
        asynchronous=False,
    )


def sws_mode() -> RestrictedMode:
    return RestrictedMode(
        name="SWS",
        cost_model=SIGNATURE_COST_MODEL,
        replicated_callers=True,
        asynchronous=False,
    )


ALL_MODES = (perpetual_ws_mode(), thema_mode(), bft_ws_mode(), sws_mode())
