"""Perpetual-WS reproduction.

A from-scratch Python implementation of the system described in
"Byzantine Fault-Tolerant Web Services for n-Tier and Service Oriented
Architectures" (Pallemulle & Goldman, WUCSE-2007-53 / ICDCS 2008):

- ``repro.clbft``      -- Castro-Liskov Practical Byzantine Fault Tolerance.
- ``repro.perpetual``  -- the Perpetual replicated-to-replicated algorithm.
- ``repro.soap``       -- a minimal SOAP / WS-Addressing engine (Axis2 stand-in).
- ``repro.ws``         -- the Perpetual-WS middleware and public API.
- ``repro.sim``        -- deterministic discrete-event simulation substrate.
- ``repro.scenario``   -- declarative deployment: one ScenarioSpec, three
  runtimes (sim / threaded / process).
- ``repro.tpcw``       -- the TPC-W macro-benchmark (bookstore, RBEs, PGE, bank).

The top-level package re-exports the public API a downstream user needs to
deploy a replicated web service.

Start with ``docs/architecture.md`` for the layer map (sim kernel ->
transport -> ws/channel -> clbft/perpetual -> scenario runtimes) and
the cross-layer contracts every package below states and the analysis
rules enforce.
"""

from repro.common.config import ReplicationConfig, ServiceSpec
from repro.common.errors import (
    AuthenticationError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    RequestAborted,
)
from repro.perpetual.executor import (
    Compute,
    CurrentTime,
    Random,
    ReceiveReply,
    ReceiveRequest,
    Send,
    SendReply,
    Timestamp,
)
from repro.scenario import (
    ScenarioBuilder,
    ScenarioSpec,
    get_runtime,
    run_scenario,
)
from repro.ws.api import MessageContext, MessageHandler, Utils
from repro.ws.deployment import Deployment, ServiceDeployment

__all__ = [
    "AuthenticationError",
    "Compute",
    "ConfigurationError",
    "CurrentTime",
    "Deployment",
    "MessageContext",
    "MessageHandler",
    "ProtocolError",
    "Random",
    "ReceiveReply",
    "ReceiveRequest",
    "ReplicationConfig",
    "ReproError",
    "RequestAborted",
    "ScenarioBuilder",
    "ScenarioSpec",
    "Send",
    "SendReply",
    "ServiceDeployment",
    "ServiceSpec",
    "Timestamp",
    "Utils",
    "get_runtime",
    "run_scenario",
]

__version__ = "1.0.0"
