"""SOAP faults.

Deterministic aborts surface to applications as SOAP fault envelopes: the
caller's replicas all agree the request aborted, so they all construct the
identical fault. Applications can test ``MessageContext.is_fault`` or
match the fault code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soap.envelope import SoapEnvelope

FAULT_MARKER = "soap:Fault"

CODE_ABORTED = "perpetual:RequestAborted"
CODE_RECEIVER = "soap:Receiver"
CODE_SENDER = "soap:Sender"


@dataclass(frozen=True)
class SoapFault:
    """Structured view of a fault payload."""

    code: str
    reason: str


def make_fault_envelope(code: str, reason: str) -> SoapEnvelope:
    envelope = SoapEnvelope()
    envelope.headers[FAULT_MARKER] = code
    envelope.body = {"fault": {"code": code, "reason": reason}}
    return envelope


def fault_of(envelope: SoapEnvelope) -> SoapFault | None:
    """The fault carried by ``envelope``, if it is a fault message."""
    code = envelope.headers.get(FAULT_MARKER)
    if code is None:
        return None
    body = envelope.body or {}
    fault = body.get("fault", {}) if isinstance(body, dict) else {}
    return SoapFault(code=code, reason=fault.get("reason", ""))
