"""SOAP 1.2 envelopes with a typed body codec.

An envelope is header blocks plus one body element. Application payloads
are plain Python structures (dicts, lists, ints, strings, booleans, bytes,
None); the codec embeds them as XML with ``t`` type attributes so parsing
restores the exact structure. The XML text is what travels as the
Perpetual payload — marshaling and demarshaling happen on every request
and reply, as in the Axis2 deployment the paper measured.
"""

from __future__ import annotations

import base64
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any
from xml.sax.saxutils import escape, quoteattr

from repro.common.errors import ProtocolError

SOAP_NS = "http://www.w3.org/2003/05/soap-envelope"


def body_to_xml(parent: ET.Element, tag: str, value: Any) -> ET.Element:
    """Append ``value`` under ``parent`` as a typed XML element."""
    element = ET.SubElement(parent, tag)
    if value is None:
        element.set("t", "null")
    elif isinstance(value, bool):
        element.set("t", "bool")
        element.text = "1" if value else "0"
    elif isinstance(value, int):
        element.set("t", "int")
        element.text = str(value)
    elif isinstance(value, str):
        element.set("t", "str")
        element.text = value
    elif isinstance(value, bytes):
        element.set("t", "b64")
        element.text = base64.b64encode(value).decode("ascii")
    elif isinstance(value, list):
        element.set("t", "list")
        for item in value:
            body_to_xml(element, "item", item)
    elif isinstance(value, dict):
        element.set("t", "map")
        for key in value:
            if not isinstance(key, str):
                raise ProtocolError(f"non-string SOAP map key: {key!r}")
            entry = body_to_xml(element, "entry", value[key])
            entry.set("k", key)
    else:
        raise ProtocolError(
            f"type {type(value).__name__} is not SOAP-encodable"
        )
    return element


def body_from_xml(element: ET.Element) -> Any:
    """Inverse of :func:`body_to_xml`."""
    kind = element.get("t")
    text = element.text or ""
    if kind == "null":
        return None
    if kind == "bool":
        return text == "1"
    if kind == "int":
        return int(text)
    if kind == "str":
        return text
    if kind == "b64":
        return base64.b64decode(text)
    if kind == "list":
        return [body_from_xml(child) for child in element]
    if kind == "map":
        return {child.get("k"): body_from_xml(child) for child in element}
    raise ProtocolError(f"unknown SOAP body type: {kind!r}")


def _fast_body_xml(out: list[str], tag: str, value: Any, extra: str = "") -> None:
    """Append ``value`` to ``out`` as typed XML markup (string building).

    Marshaling runs on every request and reply, so the envelope is built
    by direct string concatenation instead of an ElementTree pass; the
    markup round-trips through :func:`body_from_xml` identically.
    """
    if value is None:
        out.append(f"<{tag} t=\"null\"{extra} />")
    elif value is True:
        out.append(f"<{tag} t=\"bool\"{extra}>1</{tag}>")
    elif value is False:
        out.append(f"<{tag} t=\"bool\"{extra}>0</{tag}>")
    elif isinstance(value, int):
        out.append(f"<{tag} t=\"int\"{extra}>{value}</{tag}>")
    elif isinstance(value, str):
        out.append(f"<{tag} t=\"str\"{extra}>{escape(value)}</{tag}>")
    elif isinstance(value, bytes):
        encoded = base64.b64encode(value).decode("ascii")
        out.append(f"<{tag} t=\"b64\"{extra}>{encoded}</{tag}>")
    elif isinstance(value, list):
        out.append(f"<{tag} t=\"list\"{extra}>")
        for item in value:
            _fast_body_xml(out, "item", item)
        out.append(f"</{tag}>")
    elif isinstance(value, dict):
        out.append(f"<{tag} t=\"map\"{extra}>")
        for key in value:
            if not isinstance(key, str):
                raise ProtocolError(f"non-string SOAP map key: {key!r}")
            _fast_body_xml(out, "entry", value[key], f" k={quoteattr(key)}")
        out.append(f"</{tag}>")
    else:
        raise ProtocolError(
            f"type {type(value).__name__} is not SOAP-encodable"
        )


@dataclass
class SoapEnvelope:
    """One SOAP message: headers (flat string map) and a body payload."""

    headers: dict[str, str] = field(default_factory=dict)
    body: Any = None

    def to_xml(self) -> bytes:
        out = [f'<soap:Envelope xmlns:soap="{SOAP_NS}"><soap:Header>']
        for name in sorted(self.headers):
            out.append(
                f"<block name={quoteattr(name)}>"
                f"{escape(self.headers[name])}</block>"
            )
        out.append("</soap:Header><soap:Body>")
        _fast_body_xml(out, "payload", self.body)
        out.append("</soap:Body></soap:Envelope>")
        return "".join(out).encode("utf-8")

    @classmethod
    def from_xml(cls, data: bytes) -> "SoapEnvelope":
        try:
            root = ET.fromstring(data)
        except ET.ParseError as exc:
            raise ProtocolError(f"malformed SOAP envelope: {exc}") from exc
        if root.tag != f"{{{SOAP_NS}}}Envelope":
            raise ProtocolError(f"not a SOAP envelope: {root.tag}")
        headers: dict[str, str] = {}
        body: Any = None
        for child in root:
            if child.tag == f"{{{SOAP_NS}}}Header":
                for block in child:
                    headers[block.get("name", "")] = block.text or ""
            elif child.tag == f"{{{SOAP_NS}}}Body":
                payload = child.find("payload")
                if payload is None:
                    raise ProtocolError("SOAP body missing payload element")
                body = body_from_xml(payload)
        return cls(headers=headers, body=body)

    def copy(self) -> "SoapEnvelope":
        return SoapEnvelope(headers=dict(self.headers), body=self.body)
