"""The SOAP engine: both pipes plus marshal/demarshal.

One engine instance serves one service replica. The OUT-PIPE runs before
marshaling (transport send); the IN-PIPE runs after demarshaling
(transport receive) — the same message flow as Axis2's engine between the
Client API / MessageReceiver and the transport modules.
"""

from __future__ import annotations

from typing import Any

from repro.soap.envelope import SoapEnvelope
from repro.soap.handlers import (
    AddressingInHandler,
    AddressingOutHandler,
    Handler,
    HandlerChain,
)


class SoapEngine:
    """Handler pipes and envelope (de)marshaling for one replica."""

    def __init__(self) -> None:
        self.out_pipe = HandlerChain([AddressingOutHandler()])
        self.in_pipe = HandlerChain([AddressingInHandler()])
        self.marshalled = 0
        self.demarshalled = 0

    def add_out_handler(self, handler: Handler) -> None:
        self.out_pipe.add(handler)

    def add_in_handler(self, handler: Handler) -> None:
        self.in_pipe.add(handler)

    def send_through(self, context: Any) -> bytes:
        """OUT-PIPE then marshal; returns the wire payload."""
        self.out_pipe.invoke(context)
        self.marshalled += 1
        return context.envelope.to_xml()

    def receive_through(self, context: Any, data: bytes) -> SoapEnvelope:
        """Demarshal then IN-PIPE; returns the parsed envelope."""
        envelope = SoapEnvelope.from_xml(data)
        context.envelope = envelope
        self.in_pipe.invoke(context)
        self.demarshalled += 1
        return envelope
