"""WS-Addressing header fields (paper section 5.1).

Perpetual-WS correlates messages with four WS-Addressing fields: the
MessageHandler stamps ``wsa:messageID`` and ``wsa:replyTo`` on requests;
replies carry ``wsa:relatesTo`` (copied from the request's message id) and
``wsa:to`` (copied from the request's ``wsa:replyTo``).
"""

from __future__ import annotations

from repro.soap.envelope import SoapEnvelope


class WsAddressing:
    """Namespaced header names plus typed accessors."""

    MESSAGE_ID = "wsa:MessageID"
    REPLY_TO = "wsa:ReplyTo"
    TO = "wsa:To"
    RELATES_TO = "wsa:RelatesTo"
    ACTION = "wsa:Action"

    @staticmethod
    def message_id(envelope: SoapEnvelope) -> str:
        return envelope.headers.get(WsAddressing.MESSAGE_ID, "")

    @staticmethod
    def set_message_id(envelope: SoapEnvelope, value: str) -> None:
        envelope.headers[WsAddressing.MESSAGE_ID] = value

    @staticmethod
    def reply_to(envelope: SoapEnvelope) -> str:
        return envelope.headers.get(WsAddressing.REPLY_TO, "")

    @staticmethod
    def set_reply_to(envelope: SoapEnvelope, value: str) -> None:
        envelope.headers[WsAddressing.REPLY_TO] = value

    @staticmethod
    def to(envelope: SoapEnvelope) -> str:
        return envelope.headers.get(WsAddressing.TO, "")

    @staticmethod
    def set_to(envelope: SoapEnvelope, value: str) -> None:
        envelope.headers[WsAddressing.TO] = value

    @staticmethod
    def relates_to(envelope: SoapEnvelope) -> str:
        return envelope.headers.get(WsAddressing.RELATES_TO, "")

    @staticmethod
    def set_relates_to(envelope: SoapEnvelope, value: str) -> None:
        envelope.headers[WsAddressing.RELATES_TO] = value

    @staticmethod
    def action(envelope: SoapEnvelope) -> str:
        return envelope.headers.get(WsAddressing.ACTION, "")

    @staticmethod
    def set_action(envelope: SoapEnvelope, value: str) -> None:
        envelope.headers[WsAddressing.ACTION] = value
