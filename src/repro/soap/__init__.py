"""A minimal SOAP 1.2 engine: the reproduction's Axis2 stand-in.

Paper section 2.3 describes the Axis2 architecture Perpetual-WS plugs
into: a Client API hands messages to an engine whose OUT-PIPE of handlers
augments them before a TransportSender ships them; inbound messages flow
through a TransportListener and an IN-PIPE to a MessageReceiver. This
package reproduces those moving parts at laptop scale:

- :mod:`repro.soap.envelope`   -- SOAP envelopes over ``xml.etree``, with a
  typed body codec for application payloads;
- :mod:`repro.soap.addressing` -- WS-Addressing headers (``wsa:messageID``,
  ``wsa:replyTo``, ``wsa:to``, ``wsa:relatesTo``, ``wsa:action``);
- :mod:`repro.soap.handlers`   -- the handler/pipe abstraction;
- :mod:`repro.soap.engine`     -- the engine holding both pipes;
- :mod:`repro.soap.faults`     -- SOAP fault construction and detection.

The paper observes (section 6.4) that XML marshaling cost is dwarfed by
ChannelAdapter crypto; the engine still round-trips every payload through
real XML so the same code path is exercised.

Contract: marshaling is canonical and deterministic; protocol messages
cross processes only as wire envelopes framed by
:mod:`repro.transport.wire` (``docs/architecture.md``).
"""

from repro.soap.addressing import WsAddressing
from repro.soap.engine import SoapEngine
from repro.soap.envelope import SoapEnvelope, body_from_xml, body_to_xml
from repro.soap.faults import SoapFault, make_fault_envelope
from repro.soap.handlers import Handler, HandlerChain

__all__ = [
    "Handler",
    "HandlerChain",
    "SoapEngine",
    "SoapEnvelope",
    "SoapFault",
    "WsAddressing",
    "body_from_xml",
    "body_to_xml",
    "make_fault_envelope",
]
