"""The Axis2-style handler / pipe abstraction.

A pipe is an ordered chain of handlers, each of which may inspect and
augment the in-flight message context. Applications can register custom
handlers on either pipe (paper section 2.3: "The OUT-PIPE can be
customized by adding extra handlers"); the middleware installs the
WS-Addressing handlers by default.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.soap.addressing import WsAddressing


class Handler:
    """One stage of a pipe. ``invoke`` mutates the message context."""

    name = "handler"

    def invoke(self, context: Any) -> None:
        raise NotImplementedError


class FunctionHandler(Handler):
    """Adapts a plain callable into a handler."""

    def __init__(self, name: str, fn: Callable[[Any], None]) -> None:
        self.name = name
        self._fn = fn

    def invoke(self, context: Any) -> None:
        self._fn(context)


class HandlerChain:
    """An ordered pipe of handlers."""

    def __init__(self, handlers: list[Handler] | None = None) -> None:
        self._handlers: list[Handler] = list(handlers or [])

    def add(self, handler: Handler) -> None:
        self._handlers.append(handler)

    def add_first(self, handler: Handler) -> None:
        self._handlers.insert(0, handler)

    def invoke(self, context: Any) -> None:
        for handler in self._handlers:
            handler.invoke(context)

    def names(self) -> list[str]:
        return [h.name for h in self._handlers]


class AddressingOutHandler(Handler):
    """Stamps ``wsa:messageID`` and ``wsa:replyTo`` on outgoing requests.

    Message ids must be identical across replicas, so they come from the
    context's deterministic allocator rather than any UUID source.
    """

    name = "addressing-out"

    def invoke(self, context: Any) -> None:
        envelope = context.envelope
        if not WsAddressing.message_id(envelope):
            WsAddressing.set_message_id(envelope, context.allocate_message_id())
        if not WsAddressing.reply_to(envelope):
            WsAddressing.set_reply_to(envelope, context.local_service)


class AddressingInHandler(Handler):
    """Validates addressing headers on incoming messages."""

    name = "addressing-in"

    def invoke(self, context: Any) -> None:
        envelope = context.envelope
        context.message_id = WsAddressing.message_id(envelope)
        context.relates_to = WsAddressing.relates_to(envelope)


class CountingHandler(Handler):
    """Test/diagnostic handler that counts traversals."""

    def __init__(self, name: str = "counting") -> None:
        self.name = name
        self.count = 0

    def invoke(self, context: Any) -> None:
        self.count += 1
