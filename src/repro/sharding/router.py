"""Consistent-hash ring and the client-side router tier.

The router is pure routing state derived from a validated
:class:`~repro.scenario.spec.ScenarioSpec`: no I/O, no clocks, no
ambient randomness (SHA-256 only), so every substrate — including
spawned worker processes that only see spec JSON — rebuilds an
identical table.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: Virtual points per group on the ring (``routing.params["vnodes"]``).
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """A stable 64-bit ring coordinate for ``key``."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over group names.

    Each group contributes ``vnodes`` virtual points (``"{group}#{i}"``);
    a key lands on the first point clockwise from its own hash. Adding
    or removing one group only remaps the keys whose arcs it owned.
    """

    def __init__(self, groups: tuple[str, ...] | list[str], vnodes: int = DEFAULT_VNODES):
        if not groups:
            raise ConfigurationError("hash ring needs at least one group")
        points = [
            (_point(f"{group}#{i}"), group)
            for group in groups
            for i in range(vnodes)
        ]
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [g for _, g in points]

    def assign(self, key: str) -> str:
        """The group owning ``key``'s arc of the ring."""
        i = bisect.bisect_right(self._points, _point(key))
        return self._owners[i % len(self._owners)]


@dataclass(frozen=True)
class RouteDecision:
    """The outcome of routing one call: its target group, and whether
    the call left the caller's home group."""

    target_group: str
    cross_group: bool


class Router:
    """Resolves every service of a sharded scenario to its home group.

    Group-declared services are pinned to their declaring group under
    both policies; under ``consistent_hash`` the top-level (ungrouped)
    client services are additionally placed on a :class:`HashRing` keyed
    by their service name. Built once per deployment from the spec and
    injected into drivers; drivers only call :meth:`forward`.
    """

    def __init__(self, spec) -> None:
        if not spec.groups:
            raise ConfigurationError(
                f"scenario {spec.name!r} declares no groups; a router is "
                f"only meaningful for sharded scenarios"
            )
        routing = spec.routing
        self._policy = routing.policy
        self._pinned: dict[str, str] = {}
        for group in spec.groups:
            for decl in group.services:
                self._pinned[decl.name] = group.name
        if spec.services:
            ring = HashRing(
                tuple(group.name for group in spec.groups),
                vnodes=routing.params.get("vnodes", DEFAULT_VNODES),
            )
            for decl in spec.services:
                self._pinned[decl.name] = ring.assign(decl.name)

    @property
    def policy(self) -> str:
        return self._policy

    def group_for_service(self, service: str) -> str:
        """The home group of ``service`` (pinned or ring-assigned)."""
        try:
            return self._pinned[service]
        except KeyError:
            raise ConfigurationError(
                f"router knows no service {service!r}"
            ) from None

    def home_group_for(self, client: str) -> str:
        """The home group a client service's drivers belong to."""
        return self.group_for_service(client)

    def forward(self, source_group: str | None, target_service: str) -> RouteDecision:
        """Route one call: where does ``target_service`` live, and does
        the call cross a group boundary from ``source_group``?"""
        target_group = self.group_for_service(target_service)
        return RouteDecision(
            target_group=target_group,
            cross_group=source_group is not None and target_group != source_group,
        )


def build_router(spec) -> Router | None:
    """A :class:`Router` for sharded specs, None for classic ones."""
    return Router(spec) if spec.groups else None
