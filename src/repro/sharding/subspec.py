"""Flatten a sharded scenario into per-group sub-scenarios, and merge
the per-group observations back deterministically.

The simulator runs a sharded scenario as one sub-kernel per group (see
``docs/architecture.md``): each sub-kernel executes a classic
single-group :class:`~repro.scenario.spec.ScenarioSpec` produced by
:func:`group_subspec`, and :func:`merge_group_metrics` folds the
per-group :class:`~repro.scenario.runtime.ScenarioMetrics` into one —
groups in declaration order, counter keys sorted — so the merged result
is a pure function of the spec.
"""

from __future__ import annotations

from repro.scenario.runtime import ScenarioMetrics
from repro.scenario.spec import GroupSpec, ScenarioSpec


def group_subspec(spec: ScenarioSpec, group: GroupSpec, router) -> ScenarioSpec:
    """One group's slice of a sharded spec as a classic flat spec.

    The slice holds the group's own services and faults plus every
    top-level client service the ``router`` assigns to this group (and
    any top-level faults on those clients). Network, crypto, batching,
    seed, and budgets are inherited from the parent spec.
    """
    assigned = tuple(
        decl for decl in spec.services
        if router.group_for_service(decl.name) == group.name
    )
    assigned_names = {decl.name for decl in assigned}
    return ScenarioSpec(
        name=spec.name,
        services=group.services + assigned,
        network=spec.network,
        crypto=spec.crypto,
        crypto_params=spec.crypto_params,
        faults=group.faults + tuple(
            fault for fault in spec.faults if fault.service in assigned_names
        ),
        duration_s=spec.duration_s,
        seed=spec.seed,
        max_events=spec.max_events,
        batching=spec.batching,
    )


def merge_group_metrics(
    scenario: str,
    runtime: str,
    parts: list[tuple[str, ScenarioMetrics]],
) -> ScenarioMetrics:
    """Fold per-group metrics into one deterministic observation.

    ``parts`` is ``[(group_name, metrics), ...]`` in group declaration
    order; every service is labeled with its group, counters are summed
    over the sorted union of keys, and clocks take the max (the groups
    ran the same simulated window independently).
    """
    merged = ScenarioMetrics(scenario=scenario, runtime=runtime)
    keys: set[str] = set()
    for group_name, part in parts:
        for service_name, svc in part.services.items():
            svc.group = group_name
            merged.services[service_name] = svc
        merged.now_us = max(merged.now_us, part.now_us)
        merged.events_processed += part.events_processed
        merged.processes = max(merged.processes, part.processes)
        keys.update(part.counters)
    for key in sorted(keys):
        merged.counters[key] = sum(
            part.counters.get(key, 0) for _, part in parts
        )
    return merged
