"""Client routing tier for sharded (multi-group) scenarios.

A sharded :class:`~repro.scenario.spec.ScenarioSpec` declares N
independent BFT groups (``spec.groups``), each with its own services and
faults, behind a single routing policy (``spec.routing``). This package
is the *only* place allowed to decide which group owns a principal:

- :class:`HashRing` — deterministic consistent-hash ring over the group
  names (SHA-256 points, ``vnodes`` virtual points per group);
- :class:`Router` — resolves every service to its home group:
  group-declared services are pinned (``service_name``), top-level
  client services are ring-assigned by their service name
  (``consistent_hash``); ``forward()`` labels a call cross-group;
- :func:`group_subspec` — flattens one group (plus its ring-assigned
  clients) into a classic single-group spec for the simulator's
  per-group sub-kernels;
- :func:`merge_group_metrics` — the deterministic cross-group metrics
  merge (group order, sorted counter keys).

**Contract (rule SHARD001):** protocol and application code must not
construct routers or rings, and must not ask which group owns a
principal — only this package, the scenario substrates, and the
analysis tooling may. Drivers receive an injected router handle and
only ever call ``forward()`` on it; cross-group calls travel the
existing nested-invocation path, counted by the
``requests_routed``/``cross_group_calls`` METRICS counters.

Everything here is deterministic (hashlib only — the package is inside
the DET001–005 analysis scope) and rebuilt from spec JSON, so worker
processes reconstruct the exact same routing table from their spawn
payload. See the sharding sections of ``docs/architecture.md`` and
``docs/scenarios.md``.
"""

from repro.sharding.router import HashRing, RouteDecision, Router, build_router
from repro.sharding.subspec import group_subspec, merge_group_metrics

__all__ = [
    "HashRing",
    "RouteDecision",
    "Router",
    "build_router",
    "group_subspec",
    "merge_group_metrics",
]
